module Dsl = Hecate_frontend.Dsl
module Prng = Hecate_support.Prng

type t = {
  name : string;
  prog : Hecate_ir.Prog.t;
  inputs : (string * float array) list;
  valid_slots : int;
}

let random_vector g k ~lo ~hi = Array.init k (fun _ -> lo +. ((hi -. lo) *. Prng.float01 g))

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

(* ------------------------------------------------------------------ *)
(* Sobel filter                                                        *)
(* ------------------------------------------------------------------ *)

(* 3x3 gradient stencils, centered taps (wrap-around at image edges). *)
let sobel_gx = [ (-1, -1, -1.); (-1, 1, 1.); (0, -1, -2.); (0, 1, 2.); (1, -1, -1.); (1, 1, 1.) ]
let sobel_gy = [ (-1, -1, -1.); (-1, 0, -2.); (-1, 1, -1.); (1, -1, 1.); (1, 0, 2.); (1, 1, 1.) ]

let sobel ?(size = 64) () =
  let slots = next_pow2 (size * size) in
  let d = Dsl.create ~name:"sobel" ~slot_count:slots () in
  let img = Dsl.input d "image" in
  let gx = Dsl.conv2d d ~image:img ~img_width:size ~stride:1 ~taps:sobel_gx in
  let gy = Dsl.conv2d d ~image:img ~img_width:size ~stride:1 ~taps:sobel_gy in
  Dsl.output d (Dsl.add d (Dsl.square d gx) (Dsl.square d gy));
  let g = Prng.create ~seed:0x50BE1 in
  {
    name = "SF";
    prog = Dsl.finish d;
    inputs = [ ("image", random_vector g (size * size) ~lo:0. ~hi:1.) ];
    valid_slots = size * size;
  }

(* ------------------------------------------------------------------ *)
(* Harris corner detection                                             *)
(* ------------------------------------------------------------------ *)

let harris ?(size = 64) () =
  let slots = next_pow2 (size * size) in
  let d = Dsl.create ~name:"harris" ~slot_count:slots () in
  let img = Dsl.input d "image" in
  (* gradients are pre-scaled by 1/4 (folded into the stencil weights, exact
     powers of two) so the rank-4 response stays O(1) and the paper's
     absolute error bound is meaningful *)
  let quarter taps = List.map (fun (dy, dx, w) -> (dy, dx, 0.25 *. w)) taps in
  let ix = Dsl.conv2d d ~image:img ~img_width:size ~stride:1 ~taps:(quarter sobel_gx) in
  let iy = Dsl.conv2d d ~image:img ~img_width:size ~stride:1 ~taps:(quarter sobel_gy) in
  let ixx = Dsl.square d ix and iyy = Dsl.square d iy and ixy = Dsl.mul d ix iy in
  (* 3x3 box sum of the structure tensor *)
  let box = List.concat_map (fun dy -> List.map (fun dx -> (dy, dx, 1.)) [ -1; 0; 1 ]) [ -1; 0; 1 ] in
  let sxx = Dsl.conv2d d ~image:ixx ~img_width:size ~stride:1 ~taps:box in
  let syy = Dsl.conv2d d ~image:iyy ~img_width:size ~stride:1 ~taps:box in
  let sxy = Dsl.conv2d d ~image:ixy ~img_width:size ~stride:1 ~taps:box in
  let det = Dsl.sub d (Dsl.mul d sxx syy) (Dsl.square d sxy) in
  let trace = Dsl.add d sxx syy in
  let response = Dsl.sub d det (Dsl.scale_by d (Dsl.square d trace) 0.04) in
  Dsl.output d response;
  let g = Prng.create ~seed:0x4A1215 in
  {
    name = "HCD";
    prog = Dsl.finish d;
    inputs = [ ("image", random_vector g (size * size) ~lo:0. ~hi:1.) ];
    valid_slots = size * size;
  }

(* ------------------------------------------------------------------ *)
(* Multi-layer perceptron                                              *)
(* ------------------------------------------------------------------ *)

let xavier g ~fan_in = (Prng.float01 g -. 0.5) /. sqrt (float_of_int fan_in)

let mlp ?(in_dim = 784) ?(hidden = 100) ?(out_dim = 10) () =
  let slots = next_pow2 (max in_dim (max hidden out_dim)) in
  let d = Dsl.create ~name:"mlp" ~slot_count:slots () in
  let g = Prng.create ~seed:0x313C9 in
  let w1 = Array.init hidden (fun _ -> Array.init in_dim (fun _ -> xavier g ~fan_in:in_dim)) in
  let b1 = Array.init hidden (fun _ -> xavier g ~fan_in:in_dim) in
  let w2 = Array.init out_dim (fun _ -> Array.init hidden (fun _ -> xavier g ~fan_in:hidden)) in
  let b2 = Array.init out_dim (fun _ -> xavier g ~fan_in:hidden) in
  let x = Dsl.input d "x" in
  let h = Dsl.matvec d ~rows:hidden ~cols:in_dim (fun j i -> w1.(j).(i)) x in
  let h = Dsl.add d h (Dsl.const_vector d b1) in
  let h = Dsl.square d h in
  let y = Dsl.matvec d ~rows:out_dim ~cols:hidden (fun j i -> w2.(j).(i)) h in
  let y = Dsl.add d y (Dsl.const_vector d b2) in
  Dsl.output d y;
  {
    name = "MLP";
    prog = Dsl.finish d;
    inputs = [ ("x", random_vector g in_dim ~lo:0. ~hi:1.) ];
    valid_slots = out_dim;
  }

(* ------------------------------------------------------------------ *)
(* LeNet-5 (CGO 2022 variant: square activations, 64-wide FC2)         *)
(* ------------------------------------------------------------------ *)

let lenet ?(reduced = false) () =
  let c1 = if reduced then 2 else 6 in
  let c2 = if reduced then 4 else 16 in
  let fc1_out = if reduced then 32 else 120 in
  let fc2_out = if reduced then 16 else 64 in
  let img_w = 28 in
  let slots = 1024 in
  let d = Dsl.create ~name:"lenet" ~slot_count:slots () in
  let g = Prng.create ~seed:0x1E6E7 in
  let x = Dsl.input d "image" in
  let k5 fan = Array.init 5 (fun _ -> Array.init 5 (fun _ -> xavier g ~fan_in:fan)) in
  let taps_of k stride_ignore =
    ignore stride_ignore;
    List.concat_map (fun dy -> List.map (fun dx -> (dy, dx, k.(dy).(dx))) [ 0; 1; 2; 3; 4 ]) [ 0; 1; 2; 3; 4 ]
  in
  (* conv1 + square + pool: 28x28 -> valid 24x24 -> grid stride 2 (12x12) *)
  let pool1 =
    List.init c1 (fun _ ->
        let k = k5 25 in
        let conv = Dsl.conv2d d ~image:x ~img_width:img_w ~stride:1 ~taps:(taps_of k 1) in
        let conv = Dsl.add d conv (Dsl.const_scalar d (xavier g ~fan_in:25)) in
        Dsl.avg_pool2x2 d (Dsl.square d conv) ~img_width:img_w ~stride:1)
  in
  (* conv2 (+bias, square) + pool: stride-2 grid -> valid 8x8 -> stride 4 (4x4) *)
  let pool2 =
    List.init c2 (fun _ ->
        let contributions =
          List.map
            (fun inp ->
              let k = k5 (25 * c1) in
              Dsl.conv2d d ~image:inp ~img_width:img_w ~stride:2 ~taps:(taps_of k 2))
            pool1
        in
        let conv = Dsl.add_many d contributions in
        let conv = Dsl.add d conv (Dsl.const_scalar d (xavier g ~fan_in:(25 * c1))) in
        Dsl.avg_pool2x2 d (Dsl.square d conv) ~img_width:img_w ~stride:2)
  in
  (* gather the 4x4 stride-4 grid of every channel into a dense feature
     vector: feature c*16 + i*4 + j comes from slot (4i)*28 + 4j *)
  let features =
    List.concat
      (List.mapi
         (fun c chan ->
           List.concat
             (List.init 4 (fun i ->
                  List.init 4 (fun j ->
                      let src = (4 * i * img_w) + (4 * j) in
                      let dst = (c * 16) + (4 * i) + j in
                      Dsl.rotate d (Dsl.mask d chan (fun s -> s = src)) (src - dst)))))
         pool2)
  in
  let feat = Dsl.add_many d features in
  let feat_dim = c2 * 16 in
  let dense rows cols v =
    let w = Array.init rows (fun _ -> Array.init cols (fun _ -> xavier g ~fan_in:cols)) in
    let b = Array.init rows (fun _ -> xavier g ~fan_in:cols) in
    Dsl.add d (Dsl.matvec d ~rows ~cols (fun j i -> w.(j).(i)) v) (Dsl.const_vector d b)
  in
  let h1 = Dsl.square d (dense fc1_out feat_dim feat) in
  let h2 = Dsl.square d (dense fc2_out fc1_out h1) in
  let y = dense 10 fc2_out h2 in
  Dsl.output d y;
  {
    name = (if reduced then "LeNet-r" else "LeNet");
    prog = Dsl.finish d;
    inputs = [ ("image", random_vector g (img_w * img_w) ~lo:0. ~hi:1.) ];
    valid_slots = 10;
  }

(* ------------------------------------------------------------------ *)
(* Regressions (encrypted gradient descent)                            *)
(* ------------------------------------------------------------------ *)

let regression_data samples seed =
  let g = Prng.create ~seed in
  let x = random_vector g samples ~lo:(-1.) ~hi:1. in
  let y = Array.map (fun xi -> (0.7 *. xi *. xi) +. (0.8 *. xi) +. 0.3) x in
  (x, y)

let linear_regression ?(epochs = 2) ?(samples = 16384) () =
  let d = Dsl.create ~name:"lr" ~slot_count:samples () in
  let x = Dsl.input d "x" and y = Dsl.input d "y" in
  let lr = 0.5 in
  let step = lr *. 2. /. float_of_int samples in
  let w = ref (Dsl.const_scalar d 0.1) and b = ref (Dsl.const_scalar d 0.05) in
  for _ = 1 to epochs do
    let pred = Dsl.add d (Dsl.mul d !w x) !b in
    let err = Dsl.sub d pred y in
    let err_s = Dsl.scale_by d err step in
    let gw = Dsl.reduce_sum d (Dsl.mul d err_s x) ~width:samples in
    let gb = Dsl.reduce_sum d err_s ~width:samples in
    w := Dsl.sub d !w gw;
    b := Dsl.sub d !b gb
  done;
  Dsl.output d (Dsl.add d (Dsl.mul d !w x) !b);
  let x_data, y_data = regression_data samples 0x11 in
  {
    name = Printf.sprintf "LR E%d" epochs;
    prog = Dsl.finish d;
    inputs = [ ("x", x_data); ("y", y_data) ];
    valid_slots = samples;
  }

let polynomial_regression ?(epochs = 2) ?(samples = 16384) () =
  let d = Dsl.create ~name:"pr" ~slot_count:samples () in
  let x = Dsl.input d "x" and y = Dsl.input d "y" in
  let x2 = Dsl.square d x in
  let lr = 0.5 in
  let step = lr *. 2. /. float_of_int samples in
  let a = ref (Dsl.const_scalar d 0.1) in
  let b = ref (Dsl.const_scalar d 0.1) in
  let c = ref (Dsl.const_scalar d 0.05) in
  for _ = 1 to epochs do
    let pred = Dsl.add d (Dsl.add d (Dsl.mul d !a x2) (Dsl.mul d !b x)) !c in
    let err = Dsl.sub d pred y in
    let err_s = Dsl.scale_by d err step in
    let ga = Dsl.reduce_sum d (Dsl.mul d err_s x2) ~width:samples in
    let gb = Dsl.reduce_sum d (Dsl.mul d err_s x) ~width:samples in
    let gc = Dsl.reduce_sum d err_s ~width:samples in
    a := Dsl.sub d !a ga;
    b := Dsl.sub d !b gb;
    c := Dsl.sub d !c gc
  done;
  Dsl.output d (Dsl.add d (Dsl.add d (Dsl.mul d !a x2) (Dsl.mul d !b x)) !c);
  let x_data, y_data = regression_data samples 0x22 in
  {
    name = Printf.sprintf "PR E%d" epochs;
    prog = Dsl.finish d;
    inputs = [ ("x", x_data); ("y", y_data) ];
    valid_slots = samples;
  }

let paper_suite () =
  [
    sobel ();
    harris ();
    mlp ();
    lenet ();
    linear_regression ~epochs:2 ();
    linear_regression ~epochs:3 ();
    polynomial_regression ~epochs:2 ();
    polynomial_regression ~epochs:3 ();
  ]

let reduced_suite () =
  [
    sobel ~size:16 ();
    harris ~size:16 ();
    mlp ~in_dim:64 ~hidden:16 ~out_dim:10 ();
    lenet ~reduced:true ();
    linear_regression ~epochs:2 ~samples:2048 ();
    linear_regression ~epochs:3 ~samples:2048 ();
    polynomial_regression ~epochs:2 ~samples:2048 ();
    polynomial_regression ~epochs:3 ~samples:2048 ();
  ]
