lib/apps/apps.ml: Array Hecate_frontend Hecate_ir Hecate_support List Printf
