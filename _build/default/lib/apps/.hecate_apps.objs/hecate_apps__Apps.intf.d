lib/apps/apps.mli: Hecate_ir
