(** Encryption-parameter selection for a scale-managed, typed program.

    From the scales and levels the type checker assigned, compute the
    modulus chain the program needs (constraint C1 with headroom for the
    message integer part) and the ring degree the security standard would
    demand. Because this repository runs its CKKS substrate at reduced
    degrees, the selection separately reports the degree used for actual
    execution (capped, documented in DESIGN.md). *)

type t = {
  q0_bits : int; (** base prime size *)
  sf_bits : int; (** rescaling prime size (the paper's S_f) *)
  chain_levels : int; (** number of rescaling primes in the chain *)
  log_q : float; (** total ciphertext-modulus bits *)
  secure_n : int; (** degree the 128-bit security table requires *)
  slot_count : int; (** slots the program was written for *)
}

val select :
  ?q0_bits:int ->
  ?margin_bits:float ->
  sf_bits:int ->
  types:Hecate_ir.Types.t array ->
  slot_count:int ->
  unit ->
  t
(** [select ~sf_bits ~types ~slot_count ()] sizes the chain so that every
    value satisfies [scale + margin <= q0 + (chain_levels - level) * sf].
    [margin_bits] (default 6.0) is headroom for message magnitude.
    @raise Invalid_argument if some scale cannot fit even at level 0. *)

val num_primes_at : t -> level:int -> int
(** Chain primes still present at a rescaling level. *)
