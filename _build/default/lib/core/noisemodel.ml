module Prog = Hecate_ir.Prog
module Types = Hecate_ir.Types

type config = { n : int; sigma : float; sf_bits : float; special_bits : float }

let default_config ~n = { n; sigma = 3.24; sf_bits = 28.; special_bits = 31. }

type report = {
  noise_bits : float array;
  message_bits : float array;
  predicted_rmse : float;
}

let log2 x = log x /. log 2.

(* log2 (2^a + 2^b) *)
let ladd a b =
  if a = neg_infinity then b
  else if b = neg_infinity then a
  else
    let hi = Float.max a b and lo = Float.min a b in
    hi +. (log1p (Float.exp2 (lo -. hi)) /. log 2.)

(* RMS accumulation of independent error terms: log2 sqrt(2^2a + 2^2b).
   Reductions over thousands of slots make worst-case (coherent) tracking
   useless; noise terms in CKKS behave like independent random variables. *)
let radd a b = 0.5 *. ladd (2. *. a) (2. *. b)

(* Calibration constants (measured on the in-repo backend at n = 1024,
   sigma = 3.24):
   - fresh encryption shows ~2^11.5 RMS slot noise -> C_FRESH;
   - encoding rounds coefficients by 1/2, i.e. ~0.5*sqrt(n/12) slot RMS;
   - key switching (relinearization / rotation) adds noise governed by the
     digit magnitude q_i/2 scaled down by the special prime. *)
let c_fresh = 0.2
let c_ks = 0.7
let c_round = -2.6

let fresh_noise cfg = log2 cfg.sigma +. (0.5 *. log2 (float_of_int cfg.n)) +. c_fresh
let encode_noise cfg = (0.5 *. log2 (float_of_int cfg.n)) -. 2.3

let keyswitch_noise cfg ~level =
  (* sum over (remaining) digits of |digit| * e / P, in the slot domain *)
  let primes_left = Float.max 1. (float_of_int (1 + level)) in
  ignore primes_left;
  cfg.sf_bits -. 1. -. cfg.special_bits +. log2 cfg.sigma
  +. log2 (float_of_int cfg.n)
  +. c_ks

let rescale_round_noise cfg = (0.5 *. log2 (float_of_int cfg.n)) +. c_round

let analyze cfg (p : Prog.t) =
  let num = Prog.num_ops p in
  let noise = Array.make num neg_infinity in
  let value = Array.make num 0. (* log2 bound on |slot value| *) in
  let msg = Array.make num 0. (* log2 bound on |message| = value * scale *) in
  let scale_of (o : Prog.op) =
    match Types.scaled_of o.Prog.ty with Some s -> s.Types.scale | None -> 0.
  in
  let level_of (o : Prog.op) =
    match Types.scaled_of o.Prog.ty with Some s -> s.Types.level | None -> 0
  in
  Prog.iter
    (fun (o : Prog.op) ->
      let i = o.Prog.id in
      let a () = o.Prog.args.(0) in
      let b () = o.Prog.args.(1) in
      let sc = scale_of o in
      (match o.Prog.kind with
      | Prog.Input _ ->
          value.(i) <- 0.;
          noise.(i) <- fresh_noise cfg
      | Prog.Const { value = Prog.Scalar x } ->
          value.(i) <- log2 (Float.max 1e-9 (Float.abs x));
          noise.(i) <- neg_infinity
      | Prog.Const { value = Prog.Vector v } ->
          let m = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 1e-9 v in
          value.(i) <- log2 m;
          noise.(i) <- neg_infinity
      | Prog.Encode _ ->
          value.(i) <- value.(a ());
          noise.(i) <- encode_noise cfg
      | Prog.Add | Prog.Sub ->
          (* RMS growth for values too: slot magnitudes in the benchmark
             suite behave statistically, not adversarially *)
          value.(i) <- radd value.(a ()) value.(b ());
          noise.(i) <- radd noise.(a ()) noise.(b ())
      | Prog.Negate ->
          value.(i) <- value.(a ());
          noise.(i) <- noise.(a ())
      | Prog.Rotate _ ->
          value.(i) <- value.(a ());
          noise.(i) <- radd noise.(a ()) (keyswitch_noise cfg ~level:(level_of o))
      | Prog.Mul ->
          let va = a () and vb = b () in
          value.(i) <- value.(va) +. value.(vb);
          (* e1*M2 + M1*e2 (+ e1*e2, dominated) + key switching when both
             operands are ciphertexts *)
          let cross = radd (noise.(va) +. msg.(vb)) (msg.(va) +. noise.(vb)) in
          let both_cipher =
            Types.is_cipher (Prog.op p va).Prog.ty && Types.is_cipher (Prog.op p vb).Prog.ty
          in
          let ks = if both_cipher then keyswitch_noise cfg ~level:(level_of o) else neg_infinity in
          noise.(i) <- radd cross ks
      | Prog.Rescale ->
          value.(i) <- value.(a ());
          noise.(i) <- radd (noise.(a ()) -. cfg.sf_bits) (rescale_round_noise cfg)
      | Prog.Modswitch ->
          value.(i) <- value.(a ());
          noise.(i) <- noise.(a ())
      | Prog.Upscale { target_scale } ->
          let src = a () in
          let factor_bits = Float.max 0. (target_scale -. scale_of (Prog.op p src)) in
          value.(i) <- value.(src);
          (* noise scales with the integer multiplier; its rounding by 1/2
             perturbs the message relatively by 2^-(factor_bits+1) *)
          (* the integer multiplier m = round(2^factor) deviates by <= 1/2,
             an absolute message perturbation of |M|/2 *)
          let rounding = msg.(src) -. 1. in
          noise.(i) <- radd (noise.(src) +. factor_bits) rounding
      | Prog.Downscale _ ->
          let src = a () in
          let src_scale = scale_of (Prog.op p src) in
          let factor_bits = Float.max 0. (cfg.sf_bits +. sc -. src_scale) in
          value.(i) <- value.(src);
          let upscaled = radd (noise.(src) +. factor_bits) (msg.(src) -. 1.) in
          noise.(i) <- radd (upscaled -. cfg.sf_bits) (rescale_round_noise cfg));
      msg.(i) <- value.(i) +. sc)
    p;
  let rmse_bits =
    List.fold_left
      (fun acc out ->
        let o = Prog.op p out in
        Float.max acc (noise.(out) -. scale_of o))
      neg_infinity p.Prog.outputs
  in
  { noise_bits = noise; message_bits = msg; predicted_rmse = Float.exp2 rmse_bits }

let predicted_rmse_bits cfg p = log2 (analyze cfg p).predicted_rmse
