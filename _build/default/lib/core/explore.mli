(** Scale management space exploration (paper §VI): steepest-ascent hill
    climbing over per-edge optimization degrees.

    A plan maps every edge of the SMU graph (or every use-def edge, for the
    naïve baseline of Table III) to a degree: the number of extra
    scale-management operations forced on the values crossing that edge.
    Each epoch evaluates one neighbour per edge (the previous best plan with
    that edge's degree incremented); the climb stops at a local optimum or
    at [max_epochs]. *)

type plan = int array (** degree per edge *)

type result = {
  best_plan : plan;
  best_prog : Hecate_ir.Prog.t; (** finalized and typed *)
  best_cost : float; (** estimated seconds *)
  epochs : int; (** epochs that found an improvement *)
  plans_explored : int; (** total candidate programs evaluated *)
}

val hook_of_plan : Smu.edge array -> plan -> Codegen.hook
(** Degree lookup for the code generators: the degree of the edge owning a
    given (op, operand) site, 0 elsewhere. *)

val hill_climb :
  codegen:(hook:Codegen.hook -> Hecate_ir.Prog.t) ->
  evaluate:(Hecate_ir.Prog.t -> float) ->
  edges:Smu.edge array ->
  ?max_epochs:int ->
  unit ->
  result
(** [codegen] runs one scale-management code generation under a plan hook
    and must return a finalized, typed program; [evaluate] scores it
    (seconds, lower is better; [infinity] for infeasible candidates). *)
