(** Static noise estimation for scale-managed programs.

    A heuristic CKKS noise tracker in the spirit of the ELASM follow-up to
    the paper: each value carries an estimated absolute slot-domain noise
    (log2) and a message-magnitude bound; the opaque scale-management
    operations contribute their lowering's noise, including the
    integer-rounding term of [downscale]'s plaintext multiplier that
    dominates accuracy at high waterlines in this repository's 28-bit-prime
    setting.

    Constants are calibrated against the in-repo backend (documented in the
    implementation); predictions are order-of-magnitude, which suffices to
    rank scale-management plans by expected accuracy. *)

type config = {
  n : int; (** ring degree the program will execute at *)
  sigma : float; (** RLWE error standard deviation *)
  sf_bits : float;
  special_bits : float;
}

val default_config : n:int -> config
(** sigma 3.24 (centered binomial, eta 21), 28-bit rescale primes, 31-bit
    special prime — this repository's defaults. *)

type report = {
  noise_bits : float array; (** per-value absolute slot noise, log2 *)
  message_bits : float array; (** per-value bound on log2 |message * scale| *)
  predicted_rmse : float; (** decoded-output error estimate *)
}

val analyze : config -> Hecate_ir.Prog.t -> report
(** Requires a typed program (run the driver or {!Hecate_ir.Typing.check}
    first). Input slot values are assumed bounded by 1 in magnitude, as in
    the benchmark suite. *)

val predicted_rmse_bits : config -> Hecate_ir.Prog.t -> float
(** [log2] of the predicted output error: convenience for explorers. *)
