(** Static performance estimation of a scale-managed program (paper §VI-C).

    Each operation is charged the model cost of its class at the number of
    chain primes present in its operands — [chain_levels + 1 - level] — for
    the ring degree that parameter selection produced. The opaque
    [upscale]/[downscale] operations are charged as their lowering
    (plain multiply, respectively plain multiply plus rescale). *)

val estimate :
  model:Costmodel.t -> params:Paramselect.t -> n:int -> Hecate_ir.Prog.t -> float
(** [estimate ~model ~params ~n prog] is the predicted execution time in
    seconds of the (typed) program at ring degree [n]. Requires types on the
    ops (run {!Hecate_ir.Typing.check} first).
    @raise Invalid_argument if an op lacks a scaled type where one is
    required. *)

val per_op_seconds :
  model:Costmodel.t -> params:Paramselect.t -> n:int -> Hecate_ir.Prog.op -> Hecate_ir.Types.t array -> float
(** Cost charged for a single operation given its operand types. Exposed for
    the estimator-accuracy experiment (Fig. 8) and tests. *)
