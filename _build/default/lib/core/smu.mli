(** Scale management unit (SMU) generation (paper §V, Algorithm 1).

    SMUs group ciphertext values whose scale and level can be managed
    together, shrinking the exploration space of SMSE from one knob per
    use-def edge to one knob per SMU-graph edge. Three phases:

    + {e definition-aware merge} (forward): values produced with the same
      nominal scale by the same (operator, operand-unit) combination share a
      unit — plaintext additions, rotations and negations stay in their
      operand's unit, same-scale ciphertext additions merge units;
    + {e operation-aware split}: multiplication-defined members are split
      from the rest of each unit (the multiplication prefix always has
      proactive-rescaling headroom);
    + {e user-aware split} (backward, to fixpoint): members consumed by
      different sets of units are separated. *)

type t = private {
  unit_of : int array; (** unit id per value; -1 for non-ciphertext values *)
  units : (int * int list) list; (** unit id, members *)
  edges : edge array;
  use_def_edges : int; (** total ciphertext use-def edges (the naïve space) *)
}

and edge = {
  src : int; (** defining unit *)
  dst : int; (** consuming unit *)
  sites : (int * int) list; (** (op id, operand index) pairs crossing the edge *)
}

val generate : ?phases:int -> Hecate_ir.Prog.t -> t
(** Analyze an unmanaged program (homomorphic ops only). [phases] (default
    3) truncates the algorithm for ablation studies: 1 = definition-aware
    merge only, 2 = adds the operation-aware split, 3 = the full
    algorithm. *)

val unit_count : t -> int
val edge_count : t -> int

val naive_edges : Hecate_ir.Prog.t -> edge array
(** One single-site edge per ciphertext use-def pair: the exploration space
    of the naïve scheme in Table III. *)
