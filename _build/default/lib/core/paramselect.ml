module Types = Hecate_ir.Types

type t = {
  q0_bits : int;
  sf_bits : int;
  chain_levels : int;
  log_q : float;
  secure_n : int;
  slot_count : int;
}

(* Mirror of Hecate_ckks.Params.security_table; lib/core must not depend on
   the crypto backend, so the standard's bounds are restated here. *)
let security_bounds =
  [ (1024, 27.); (2048, 54.); (4096, 109.); (8192, 218.); (16384, 438.); (32768, 881.) ]

let secure_degree ~log_qp =
  let rec search = function
    | [] -> 65536 (* beyond the table; report the next power of two *)
    | (n, bound) :: rest -> if bound >= log_qp then n else search rest
  in
  search security_bounds

let select ?(q0_bits = 30) ?(margin_bits = 6.) ~sf_bits ~types ~slot_count () =
  let sf = float_of_int sf_bits in
  let q0 = float_of_int q0_bits in
  let needed = ref 0 in
  Array.iter
    (fun ty ->
      match Types.scaled_of ty with
      | None -> ()
      | Some { Types.scale; level } ->
          (* scale + margin <= q0 + (chain_levels - level) * sf *)
          let for_scale =
            int_of_float (Float.ceil (((scale +. margin_bits -. q0) /. sf) +. 1e-9))
            + level
          in
          needed := max !needed (max level for_scale))
    types;
  let chain_levels = !needed in
  let log_q = q0 +. (float_of_int chain_levels *. sf) in
  (* special prime is one bit above the largest chain prime *)
  let log_qp = log_q +. float_of_int (min 31 (max q0_bits sf_bits + 1)) in
  {
    q0_bits;
    sf_bits;
    chain_levels;
    log_q;
    secure_n = secure_degree ~log_qp;
    slot_count;
  }

let num_primes_at t ~level =
  if level < 0 || level > t.chain_levels then invalid_arg "Paramselect.num_primes_at: bad level";
  t.chain_levels + 1 - level
