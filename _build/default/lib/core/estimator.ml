module Prog = Hecate_ir.Prog
module Types = Hecate_ir.Types

let primes_for params level = Paramselect.num_primes_at params ~level

let operand_level name arg_tys i =
  match Types.scaled_of arg_tys.(i) with
  | Some s -> s.Types.level
  | None -> invalid_arg ("Estimator: " ^ name ^ " operand is not scaled")

let per_op_seconds ~model ~params ~n (o : Prog.op) (arg_tys : Types.t array) =
  let cost cls ~level = model.Costmodel.cost cls ~num_primes:(primes_for params level) ~n in
  match o.Prog.kind with
  | Prog.Input _ | Prog.Const _ -> 0.
  | Prog.Encode _ ->
      let level = match Types.scaled_of o.Prog.ty with Some s -> s.Types.level | None -> 0 in
      cost Costmodel.Encode ~level
  | Prog.Add | Prog.Sub ->
      let level = operand_level "add" arg_tys 0 in
      let both_cipher = Types.is_cipher arg_tys.(0) && Types.is_cipher arg_tys.(1) in
      cost (if both_cipher then Costmodel.Cipher_add else Costmodel.Plain_add) ~level
  | Prog.Negate ->
      let level = operand_level "negate" arg_tys 0 in
      cost Costmodel.Plain_add ~level
  | Prog.Mul ->
      let level = operand_level "mul" arg_tys 0 in
      let both_cipher = Types.is_cipher arg_tys.(0) && Types.is_cipher arg_tys.(1) in
      if both_cipher then cost Costmodel.Cipher_mul ~level
      else cost Costmodel.Plain_mul ~level +. cost Costmodel.Encode ~level
  | Prog.Rotate _ ->
      let level = operand_level "rotate" arg_tys 0 in
      cost Costmodel.Rotate ~level
  | Prog.Rescale ->
      let level = operand_level "rescale" arg_tys 0 in
      cost Costmodel.Rescale ~level
  | Prog.Modswitch ->
      let level = operand_level "modswitch" arg_tys 0 in
      cost Costmodel.Modswitch ~level
  | Prog.Upscale _ ->
      (* lowering: encode a constant 1 and plain-multiply *)
      let level = operand_level "upscale" arg_tys 0 in
      cost Costmodel.Plain_mul ~level +. cost Costmodel.Encode ~level
  | Prog.Downscale _ ->
      (* lowering: upscale then rescale *)
      let level = operand_level "downscale" arg_tys 0 in
      cost Costmodel.Plain_mul ~level +. cost Costmodel.Encode ~level
      +. cost Costmodel.Rescale ~level

let estimate ~model ~params ~n (p : Prog.t) =
  let total = ref 0. in
  Prog.iter
    (fun o ->
      let arg_tys = Array.map (fun a -> (Prog.op p a).Prog.ty) o.Prog.args in
      total := !total +. per_op_seconds ~model ~params ~n o arg_tys)
    p;
  !total
