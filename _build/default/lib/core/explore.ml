type plan = int array

type result = {
  best_plan : plan;
  best_prog : Hecate_ir.Prog.t;
  best_cost : float;
  epochs : int;
  plans_explored : int;
}

let hook_of_plan (edges : Smu.edge array) (plan : plan) =
  let table = Hashtbl.create 64 in
  Array.iteri
    (fun i (e : Smu.edge) ->
      if plan.(i) > 0 then
        List.iter (fun site -> Hashtbl.replace table site plan.(i)) e.Smu.sites)
    edges;
  fun ~op_id ~operand -> Option.value ~default:0 (Hashtbl.find_opt table (op_id, operand))

let hill_climb ~codegen ~evaluate ~(edges : Smu.edge array) ?(max_epochs = 100) () =
  let num_edges = Array.length edges in
  let explored = ref 0 in
  (* Infeasible candidates (the type system rejects the forced plan) get an
     infinite cost; the zero plan is always feasible. *)
  let run plan =
    incr explored;
    match codegen ~hook:(hook_of_plan edges plan) with
    | prog -> (Some prog, evaluate prog)
    | exception Invalid_argument _ -> (None, infinity)
  in
  let base_plan = Array.make num_edges 0 in
  let base_prog, base_cost =
    match run base_plan with
    | Some prog, cost -> (prog, cost)
    | None, _ -> invalid_arg "Explore.hill_climb: the unmodified plan failed to compile"
  in
  let best_plan = ref base_plan and best_prog = ref base_prog and best_cost = ref base_cost in
  let epochs = ref 0 in
  let improved = ref true in
  while !improved && !epochs < max_epochs do
    improved := false;
    let candidate_best = ref None in
    for i = 0 to num_edges - 1 do
      let plan = Array.copy !best_plan in
      plan.(i) <- plan.(i) + 1;
      match run plan with
      | Some prog, cost when cost < !best_cost -> (
          match !candidate_best with
          | Some (_, _, c) when c <= cost -> ()
          | _ -> candidate_best := Some (plan, prog, cost))
      | _ -> ()
    done;
    match !candidate_best with
    | Some (plan, prog, cost) ->
        best_plan := plan;
        best_prog := prog;
        best_cost := cost;
        improved := true;
        incr epochs
    | None -> ()
  done;
  {
    best_plan = !best_plan;
    best_prog = !best_prog;
    best_cost = !best_cost;
    epochs = !epochs;
    plans_explored = !explored;
  }
