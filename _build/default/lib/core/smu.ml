module Prog = Hecate_ir.Prog

type edge = { src : int; dst : int; sites : (int * int) list }

type t = {
  unit_of : int array;
  units : (int * int list) list;
  edges : edge array;
  use_def_edges : int;
}

(* Nominal scales: the scale growth of the unmanaged program with every
   input and constant at a unit waterline and no rescaling. Only relative
   equality matters, so the waterline is taken as 1.0 "bits". *)
let nominal_scales (p : Prog.t) =
  let n = Prog.num_ops p in
  let s = Array.make n 1. in
  Prog.iter
    (fun (o : Prog.op) ->
      let arg i = s.(o.Prog.args.(i)) in
      s.(o.Prog.id) <-
        (match o.Prog.kind with
        | Prog.Input _ | Prog.Const _ -> 1.
        | Prog.Mul -> arg 0 +. arg 1
        | Prog.Add | Prog.Sub -> Float.max (arg 0) (arg 1)
        | Prog.Negate | Prog.Rotate _ -> arg 0
        | Prog.Encode _ | Prog.Rescale | Prog.Modswitch | Prog.Upscale _ | Prog.Downscale _ ->
            invalid_arg "Smu: program already scale-managed"))
    p;
  s

let is_cipher_producing (p : Prog.t) =
  (* A value is a ciphertext iff it transitively depends on an input. *)
  let n = Prog.num_ops p in
  let c = Array.make n false in
  Prog.iter
    (fun (o : Prog.op) ->
      c.(o.Prog.id) <-
        (match o.Prog.kind with
        | Prog.Input _ -> true
        | Prog.Const _ -> false
        | _ -> Array.exists (fun a -> c.(a)) o.Prog.args))
    p;
  c

(* Mutable grouping: unit ids with member lists, as the paper's Group. *)
module Group = struct
  type g = {
    mutable unit_of : int array;
    members : (int, int list ref) Hashtbl.t;
    mutable next : int;
  }

  let create n = { unit_of = Array.make n (-1); members = Hashtbl.create 32; next = 0 }

  let insert g v =
    let id = g.next in
    g.next <- id + 1;
    Hashtbl.replace g.members id (ref [ v ]);
    g.unit_of.(v) <- id;
    id

  let find g v = g.unit_of.(v)

  let add_to g ~unit v =
    let m = Hashtbl.find g.members unit in
    m := v :: !m;
    g.unit_of.(v) <- unit

  let merge g a b =
    if a <> b then begin
      let ma = Hashtbl.find g.members a and mb = Hashtbl.find g.members b in
      List.iter (fun v -> g.unit_of.(v) <- a) !mb;
      ma := !mb @ !ma;
      Hashtbl.remove g.members b
    end;
    a

  (* Split [vs] (a subset of [unit]) into a fresh unit. *)
  let split g ~unit vs =
    match vs with
    | [] -> invalid_arg "Smu.Group.split: empty split"
    | _ ->
        let m = Hashtbl.find g.members unit in
        let keep = List.filter (fun v -> not (List.mem v vs)) !m in
        m := keep;
        let id = g.next in
        g.next <- id + 1;
        Hashtbl.replace g.members id (ref vs);
        List.iter (fun v -> g.unit_of.(v) <- id) vs;
        id

  let units g =
    Hashtbl.fold (fun id m acc -> (id, List.sort compare !m) :: acc) g.members []
    |> List.sort compare
end

let generate ?(phases = 3) (p : Prog.t) =
  if phases < 1 || phases > 3 then invalid_arg "Smu.generate: phases must be 1..3";
  let n = Prog.num_ops p in
  let nominal = nominal_scales p in
  let cipher = is_cipher_producing p in
  let g = Group.create n in
  (* -------- phase 1: definition-aware merge (forward) -------- *)
  let input_unit = ref (-1) in
  let combos : (string * int list, int) Hashtbl.t = Hashtbl.create 32 in
  Prog.iter
    (fun (o : Prog.op) ->
      let id = o.Prog.id in
      if cipher.(id) then begin
        let arg_unit i =
          let a = o.Prog.args.(i) in
          if cipher.(a) then Group.find g a else -1
        in
        match o.Prog.kind with
        | Prog.Input _ ->
            if !input_unit < 0 then input_unit := Group.insert g id
            else Group.add_to g ~unit:!input_unit id
        | Prog.Negate | Prog.Rotate _ ->
            (* no scale/level change: stay in the operand's unit *)
            Group.add_to g ~unit:(arg_unit 0) id
        | Prog.Add | Prog.Sub when not (cipher.(o.Prog.args.(0)) && cipher.(o.Prog.args.(1))) ->
            (* plaintext addition: joins the ciphertext operand's unit *)
            let cu = if cipher.(o.Prog.args.(0)) then arg_unit 0 else arg_unit 1 in
            Group.add_to g ~unit:cu id
        | Prog.Add | Prog.Sub
          when Float.abs (nominal.(o.Prog.args.(0)) -. nominal.(o.Prog.args.(1))) < 1e-9 ->
            (* ciphertext addition at equal scale: merge everything *)
            let u = Group.merge g (arg_unit 0) (arg_unit 1) in
            Group.add_to g ~unit:u id
        | Prog.Add | Prog.Sub | Prog.Mul ->
            (* scale-changing definition: one unit per (operator, operand
               units) combination. The table stores a representative member
               rather than a unit id, which merges can invalidate. *)
            let key =
              (Prog.kind_name o.Prog.kind, List.sort compare [ arg_unit 0; arg_unit 1 ])
            in
            (match Hashtbl.find_opt combos key with
            | Some repr -> Group.add_to g ~unit:(Group.find g repr) id
            | None ->
                ignore (Group.insert g id);
                Hashtbl.replace combos key id)
        | Prog.Const _ -> assert false (* constants are never ciphertexts *)
        | Prog.Encode _ | Prog.Rescale | Prog.Modswitch | Prog.Upscale _ | Prog.Downscale _ ->
            invalid_arg "Smu.generate: program already scale-managed"
      end)
    p;
  (* -------- phase 2: operation-aware split -------- *)
  let defined_by_mul v =
    match (Prog.op p v).Prog.kind with Prog.Mul -> true | _ -> false
  in
  if phases >= 2 then
  List.iter
    (fun (unit, members) ->
      let muls = List.filter defined_by_mul members in
      let others = List.filter (fun v -> not (defined_by_mul v)) members in
      if muls <> [] && others <> [] then ignore (Group.split g ~unit others))
    (Group.units g);
  (* -------- phase 3: user-aware split (backward, to fixpoint) -------- *)
  let users = Prog.users p in
  let changed = ref (phases >= 3) in
  let iterations = ref 0 in
  while !changed && !iterations < 64 do
    changed := false;
    incr iterations;
    List.iter
      (fun (unit, members) ->
        match members with
        | [] | [ _ ] -> ()
        | _ ->
            let signature v =
              List.sort_uniq compare
                (List.filter_map
                   (fun u -> if cipher.(u) then Some (Group.find g u) else None)
                   users.(v))
            in
            let by_sig = Hashtbl.create 4 in
            List.iter
              (fun v ->
                let s = signature v in
                Hashtbl.replace by_sig s (v :: (Option.value ~default:[] (Hashtbl.find_opt by_sig s))))
              members;
            if Hashtbl.length by_sig > 1 then begin
              changed := true;
              (* keep the first signature group in place, split off the rest *)
              let groups = Hashtbl.fold (fun _ vs acc -> vs :: acc) by_sig [] in
              match groups with
              | [] | [ _ ] -> ()
              | _keep :: rest -> List.iter (fun vs -> ignore (Group.split g ~unit vs)) rest
            end)
      (Group.units g)
  done;
  (* -------- edges -------- *)
  let sites = Hashtbl.create 32 in
  let use_def = ref 0 in
  Prog.iter
    (fun (o : Prog.op) ->
      Array.iteri
        (fun idx a ->
          if cipher.(a) then begin
            incr use_def;
            let src = Group.find g a and dst = if cipher.(o.Prog.id) then Group.find g o.Prog.id else -2 in
            if src <> dst then begin
              let key = (src, dst) in
              Hashtbl.replace sites key
                ((o.Prog.id, idx) :: Option.value ~default:[] (Hashtbl.find_opt sites key))
            end
          end)
        o.Prog.args)
    p;
  let edges =
    Hashtbl.fold (fun (src, dst) s acc -> { src; dst; sites = List.rev s } :: acc) sites []
    |> List.sort compare |> Array.of_list
  in
  { unit_of = Array.copy g.Group.unit_of; units = Group.units g; edges; use_def_edges = !use_def }

let unit_count t = List.length t.units
let edge_count t = Array.length t.edges

let naive_edges (p : Prog.t) =
  let cipher = is_cipher_producing p in
  let acc = ref [] in
  Prog.iter
    (fun (o : Prog.op) ->
      Array.iteri
        (fun idx a -> if cipher.(a) then acc := { src = a; dst = o.Prog.id; sites = [ (o.Prog.id, idx) ] } :: !acc)
        o.Prog.args)
    p;
  Array.of_list (List.rev !acc)
