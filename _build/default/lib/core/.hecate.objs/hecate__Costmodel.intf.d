lib/core/costmodel.mli: Hashtbl
