lib/core/explore.mli: Codegen Hecate_ir Smu
