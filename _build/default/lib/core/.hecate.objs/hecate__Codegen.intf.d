lib/core/codegen.mli: Hecate_ir
