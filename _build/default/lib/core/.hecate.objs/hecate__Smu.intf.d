lib/core/smu.mli: Hecate_ir
