lib/core/estimator.mli: Costmodel Hecate_ir Paramselect
