lib/core/noisemodel.mli: Hecate_ir
