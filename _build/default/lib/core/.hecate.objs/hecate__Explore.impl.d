lib/core/explore.ml: Array Hashtbl Hecate_ir List Option Smu
