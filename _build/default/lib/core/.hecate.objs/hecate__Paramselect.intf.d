lib/core/paramselect.mli: Hecate_ir
