lib/core/paramselect.ml: Array Float Hecate_ir
