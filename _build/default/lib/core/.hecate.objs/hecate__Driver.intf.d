lib/core/driver.mli: Costmodel Hecate_ir Paramselect
