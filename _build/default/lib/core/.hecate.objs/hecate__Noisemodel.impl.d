lib/core/noisemodel.ml: Array Float Hecate_ir List
