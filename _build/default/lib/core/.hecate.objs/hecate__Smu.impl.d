lib/core/smu.ml: Array Float Hashtbl Hecate_ir List Option
