lib/core/costmodel.ml: Hashtbl
