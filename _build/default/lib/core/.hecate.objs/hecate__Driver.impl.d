lib/core/driver.ml: Array Codegen Costmodel Estimator Explore Hecate_ir Noisemodel Paramselect Smu
