lib/core/estimator.ml: Array Costmodel Hecate_ir Paramselect
