lib/core/codegen.ml: Array Float Hecate_ir
