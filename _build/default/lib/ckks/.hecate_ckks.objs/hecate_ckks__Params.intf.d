lib/ckks/params.mli: Hecate_rns
