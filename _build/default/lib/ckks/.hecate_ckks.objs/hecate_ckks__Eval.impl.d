lib/ckks/eval.ml: Array Encoder Float Hecate_rns Hecate_support Keys List Params Printf
