lib/ckks/keys.mli: Hashtbl Hecate_rns Params
