lib/ckks/eval.mli: Encoder Hecate_rns Params
