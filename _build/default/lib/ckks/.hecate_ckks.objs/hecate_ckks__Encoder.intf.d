lib/ckks/encoder.mli: Hecate_rns
