lib/ckks/encoder.ml: Array Float Hecate_rns Hecate_support
