lib/ckks/keys.ml: Array Hashtbl Hecate_rns Hecate_support List Params
