lib/ckks/params.ml: Hecate_rns List Printf
