(** CKKS canonical-embedding encoder.

    Real slot vectors of length [N/2] are mapped to integer polynomials of
    degree [N] via the canonical embedding: slot [j] is the evaluation of the
    message polynomial at [zeta^(5^j mod 2N)] where [zeta = exp(i*pi/N)].
    Ordering slots along the orbit of 5 makes the Galois automorphism
    [X -> X^(5^r)] act as a cyclic rotation of the slot vector. *)

type t
(** Cached orbit tables and FFT buffers for one ring degree. *)

val create : n:int -> t

val slots : t -> int

val encode :
  t -> Hecate_rns.Chain.t -> level_count:int -> scale:float -> float array -> Hecate_rns.Poly.t
(** [encode enc chain ~level_count ~scale v] encodes the slot vector [v]
    (length at most [slots enc]; shorter vectors are zero-padded) at the
    given scale into a [Coeff]-domain polynomial over the first
    [level_count] chain primes.
    @raise Invalid_argument if a rounded coefficient would overflow the
    native integer range (scale too large for the message). *)

val encode_constant :
  t -> Hecate_rns.Chain.t -> level_count:int -> scale:float -> float -> Hecate_rns.Poly.t
(** [encode_constant enc chain ~level_count ~scale c] encodes the constant
    vector [c, c, ..., c] exactly (a degree-0 polynomial with coefficient
    [round (c * scale)]), bypassing the FFT. *)

val decode : t -> scale:float -> float array -> float array
(** [decode enc ~scale coeffs] maps centered real coefficients (length [N])
    back to the [N/2] slot values. *)

val galois_element : t -> rotation:int -> int
(** [galois_element enc ~rotation:r] is [5^r mod 2N], the automorphism that
    rotates slots left by [r] (negative [r] rotates right). *)
