(** RNS-CKKS key material.

    Key switching uses the hybrid (special-prime) technique with per-prime
    RNS digit decomposition: switching key component [i] encrypts
    [P * w_i * s'] under [s], where [w_i] is the CRT gadget weight for chain
    prime [i] and [P] the special prime. *)

type switch_key = private {
  k0 : Hecate_rns.Poly.t array; (** per digit, [Eval] domain, full basis + special *)
  k1 : Hecate_rns.Poly.t array;
}

type t = private {
  params : Params.t;
  secret_coeffs : int array; (** centered ternary secret, kept for decryption *)
  secret_eval : Hecate_rns.Poly.t; (** [s] in [Eval] over the full chain (no special) *)
  public0 : Hecate_rns.Poly.t; (** [-(a s) + e], [Eval], full chain *)
  public1 : Hecate_rns.Poly.t; (** [a] *)
  relin : switch_key;
  galois : (int, switch_key) Hashtbl.t; (** keyed by Galois element *)
}

val generate : ?seed:int -> Params.t -> galois_elements:int list -> t
(** [generate params ~galois_elements] draws a fresh key set; a rotation key
    is created for each listed Galois element (duplicates are merged). *)

val galois_key : t -> int -> switch_key
(** @raise Not_found if no key was generated for that element. *)

val secret_at : t -> level_count:int -> Hecate_rns.Poly.t
(** The secret key in [Eval] domain over the first [level_count] chain
    primes (used by decryption). *)
