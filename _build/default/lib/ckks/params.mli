(** RNS-CKKS encryption parameters.

    A parameter set fixes the ring degree [N], the ciphertext modulus chain
    [q_0, q_1 .. q_{L-1}] (one base prime of [q0_bits] bits and [L-1]
    rescaling primes of [sf_bits] bits, the paper's rescaling factor [S_f]),
    and the special key-switching prime. *)

type t = private {
  n : int;
  chain : Hecate_rns.Chain.t;
  q0_bits : int;
  sf_bits : int;
  levels : int; (** number of rescaling primes, i.e. maximum rescaling level *)
  error_sigma_eta : int; (** centered-binomial parameter for RLWE noise *)
}

val create : ?check_security:bool -> n:int -> q0_bits:int -> sf_bits:int -> levels:int -> unit -> t
(** [create ~n ~q0_bits ~sf_bits ~levels ()] builds a parameter set. The
    special prime is sized one bit above the largest chain prime (capped at
    31 bits). With [check_security] (default [false] — this repository runs
    simulations at reduced [N]) the function raises if the modulus exceeds
    the 128-bit security bound for [N].
    @raise Invalid_argument on unattainable configurations. *)

val slots : t -> int
(** [n / 2]. *)

val log2_q : t -> float
(** Total [log2] of the ciphertext modulus (without special prime). *)

val log2_qp : t -> float
(** Total [log2] including the special prime. *)

val max_log_qp : n:int -> int
(** HE-standard style 128-bit-security bound on [log2 (Q*P)] for ring degree
    [n]. @raise Invalid_argument for unsupported [n]. *)

val min_degree_for : log_qp:float -> int
(** Smallest supported power-of-two degree whose security bound admits
    [log_qp]. @raise Invalid_argument when no supported degree suffices. *)

val is_secure : t -> bool
(** Whether the parameter set satisfies {!max_log_qp} at its degree. *)
