module Fft = Hecate_support.Fft
module Poly = Hecate_rns.Poly
module Chain = Hecate_rns.Chain

type t = {
  n : int;
  slot_pos : int array; (* slot j -> index t with 2t+1 = 5^j mod 2n *)
  conj_pos : int array; (* slot j -> index of the conjugate evaluation point *)
  zeta_re : float array; (* zeta^k, k = 0..n-1, zeta = exp(i*pi/n) *)
  zeta_im : float array;
}

let create ~n =
  if n < 8 || n land (n - 1) <> 0 then invalid_arg "Encoder.create: n must be a power of two >= 8";
  let two_n = 2 * n in
  let half = n / 2 in
  let slot_pos = Array.make half 0 and conj_pos = Array.make half 0 in
  let g = ref 1 in
  for j = 0 to half - 1 do
    slot_pos.(j) <- (!g - 1) / 2;
    conj_pos.(j) <- (two_n - !g - 1) / 2;
    g := !g * 5 mod two_n
  done;
  let zeta_re = Array.make n 0. and zeta_im = Array.make n 0. in
  for k = 0 to n - 1 do
    let theta = Float.pi *. float_of_int k /. float_of_int n in
    zeta_re.(k) <- cos theta;
    zeta_im.(k) <- sin theta
  done;
  { n; slot_pos; conj_pos; zeta_re; zeta_im }

let slots enc = enc.n / 2

(* Coefficients can reach 2^62 at most; reject anything that would wrap. *)
let coeff_limit = 0x1p61

let encode enc chain ~level_count ~scale v =
  let n = enc.n in
  if Array.length v > n / 2 then invalid_arg "Encoder.encode: too many slots";
  if Chain.degree chain <> n then invalid_arg "Encoder.encode: chain degree mismatch";
  let buf = Fft.make_buffer n in
  Array.iteri
    (fun j x ->
      buf.Fft.re.(enc.slot_pos.(j)) <- x;
      buf.Fft.re.(enc.conj_pos.(j)) <- x;
      (* real messages: conjugate has the same real part, negated imaginary
         part; imaginary parts are zero here *)
      buf.Fft.im.(enc.slot_pos.(j)) <- 0.;
      buf.Fft.im.(enc.conj_pos.(j)) <- 0.)
    v;
  (* m_k * zeta^k = (1/n) * FFT_forward(v)[k]; recover m_k by multiplying
     with zeta^{-k} and keeping the (theoretically exact) real part. *)
  Fft.forward buf;
  let inv_n = 1. /. float_of_int n in
  let coeffs = Array.make n 0 in
  for k = 0 to n - 1 do
    let re = buf.Fft.re.(k) *. inv_n and im = buf.Fft.im.(k) *. inv_n in
    (* multiply by conj(zeta^k) = zeta^{-k} *)
    let m_k = (re *. enc.zeta_re.(k)) +. (im *. enc.zeta_im.(k)) in
    let scaled = Float.round (m_k *. scale) in
    if Float.abs scaled >= coeff_limit then
      invalid_arg "Encoder.encode: scaled coefficient overflows the native integer range";
    coeffs.(k) <- int_of_float scaled
  done;
  Poly.of_centered_coeffs chain ~level_count ~with_special:false coeffs

let encode_constant enc chain ~level_count ~scale c =
  let n = enc.n in
  if Chain.degree chain <> n then invalid_arg "Encoder.encode_constant: chain degree mismatch";
  let scaled = Float.round (c *. scale) in
  if Float.abs scaled >= coeff_limit then
    invalid_arg "Encoder.encode_constant: scaled constant overflows the native integer range";
  let coeffs = Array.make n 0 in
  coeffs.(0) <- int_of_float scaled;
  Poly.of_centered_coeffs chain ~level_count ~with_special:false coeffs

let decode enc ~scale coeffs =
  let n = enc.n in
  if Array.length coeffs <> n then invalid_arg "Encoder.decode: wrong coefficient count";
  let buf = Fft.make_buffer n in
  let inv_scale = 1. /. scale in
  for k = 0 to n - 1 do
    let m_k = coeffs.(k) *. inv_scale in
    buf.Fft.re.(k) <- m_k *. enc.zeta_re.(k);
    buf.Fft.im.(k) <- m_k *. enc.zeta_im.(k)
  done;
  (* v_t = sum_k (m_k zeta^k) e^{+2 pi i t k / n} = n * ifft(...) *)
  Fft.inverse buf;
  let half = n / 2 in
  let out = Array.make half 0. in
  for j = 0 to half - 1 do
    out.(j) <- buf.Fft.re.(enc.slot_pos.(j)) *. float_of_int n
  done;
  out

let galois_element enc ~rotation =
  let two_n = 2 * enc.n in
  let half = enc.n / 2 in
  let r = ((rotation mod half) + half) mod half in
  let g = ref 1 in
  for _ = 1 to r do
    g := !g * 5 mod two_n
  done;
  !g
