module Chain = Hecate_rns.Chain

type t = {
  n : int;
  chain : Chain.t;
  q0_bits : int;
  sf_bits : int;
  levels : int;
  error_sigma_eta : int;
}

(* 128-bit classical security bounds in the style of the HE standard
   (maximum log2(Q*P) per ring degree). *)
let security_table =
  [ (1024, 27); (2048, 54); (4096, 109); (8192, 218); (16384, 438); (32768, 881) ]

let max_log_qp ~n =
  match List.assoc_opt n security_table with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Params.max_log_qp: unsupported degree %d" n)

let min_degree_for ~log_qp =
  let rec search = function
    | [] -> invalid_arg "Params.min_degree_for: modulus too large for supported degrees"
    | (n, bound) :: rest -> if float_of_int bound >= log_qp then n else search rest
  in
  search security_table

let slots p = p.n / 2
let log2_q p = Chain.log2_q p.chain ~upto:(Chain.length p.chain)

let log2_qp p =
  log2_q p +. (log (float_of_int (Chain.special_prime p.chain)) /. log 2.)

let is_secure p =
  match List.assoc_opt p.n security_table with
  | Some bound -> log2_qp p <= float_of_int bound
  | None -> false

let create ?(check_security = false) ~n ~q0_bits ~sf_bits ~levels () =
  if n < 8 || n land (n - 1) <> 0 then invalid_arg "Params.create: n must be a power of two >= 8";
  let special_bits = min 31 (max q0_bits sf_bits + 1) in
  let chain = Chain.create ~n ~q0_bits ~sf_bits ~levels ~special_bits in
  let p = { n; chain; q0_bits; sf_bits; levels; error_sigma_eta = 21 } in
  if check_security && not (is_secure p) then
    invalid_arg
      (Printf.sprintf "Params.create: log2(QP) = %.1f exceeds the 128-bit bound for n = %d"
         (log2_qp p) n);
  p
