(** Polynomials of [Z_Q\[X\]/(X^n + 1)] in RNS (double-CRT) representation.

    A polynomial carries one residue vector per active modulus: the first
    [level_count] chain primes, plus optionally the special prime. Residues
    are stored either in coefficient form ([Coeff]) or NTT/evaluation form
    ([Eval]); operations check that operands agree on basis and domain. *)

type domain = Coeff | Eval

type t = private {
  chain : Chain.t;
  level_count : int; (** number of chain primes present, [1 <= level_count <= L] *)
  with_special : bool;
  domain : domain;
  data : int array array;
      (** [data.(i)] are the residues modulo chain prime [i]; if
          [with_special] then the final entry holds the special-prime
          residues. *)
}

val zero : Chain.t -> level_count:int -> with_special:bool -> domain -> t
val copy : t -> t

val component_count : t -> int
(** [level_count + (1 if with_special)]. *)

val modulus_at : t -> int -> int
(** Modulus of component [i] (the special prime for the last component when
    present). *)

val of_centered_coeffs : Chain.t -> level_count:int -> with_special:bool -> int array -> t
(** Build a [Coeff]-domain polynomial from centered integer coefficients
    (each in [(-2^62, 2^62)]), reducing modulo every active modulus. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val mul : t -> t -> t
(** Point-wise product; both operands must be in [Eval] domain. *)

val mul_scalar : t -> int -> t
(** Multiply every residue by a non-negative integer constant (reduced per
    modulus). Domain-agnostic. *)

val mul_component_scalars : t -> int array -> t
(** [mul_component_scalars p ks] multiplies component [i] by [ks.(i)], where
    each [ks.(i)] is already reduced modulo that component's modulus. Used
    for gadget factors such as [P * w_i] whose integer value exceeds the
    native range. [Array.length ks] must equal [component_count p]. *)

val to_eval : t -> t
(** NTT-transform a [Coeff] polynomial (identity on [Eval]). *)

val to_coeff : t -> t
(** Inverse-NTT an [Eval] polynomial (identity on [Coeff]). *)

val automorphism : t -> galois:int -> t
(** [automorphism p ~galois:g] applies [X -> X^g] ([g] odd). Operand must be
    in [Coeff] domain. *)

val rescale_last : t -> t
(** Exact RNS rescale: divide by the last chain prime with centered rounding
    and drop it. Requires [Coeff] domain, no special component, and
    [level_count >= 2]. *)

val drop_last : t -> t
(** Drop the last chain prime without dividing (modswitch). Domain-agnostic.
    Requires no special component and [level_count >= 2]. *)

val mod_down_special : t -> t
(** Divide by the special prime with centered rounding and drop it (the
    tail of key switching). Requires [Coeff] domain and [with_special]. *)

val lift_digit : t -> digit:int -> with_special:bool -> t
(** [lift_digit p ~digit:i ~with_special] extracts the RNS digit [i] (the
    residues modulo [q_i]), lifts each coefficient to its centered
    representative, and re-reduces modulo every modulus of [p]'s chain-prime
    basis (optionally extended by the special prime). Requires [Coeff]
    domain. The result is in [Coeff] domain. *)

val restrict_levels : t -> level_count:int -> t
(** Keep only the first [level_count] chain components (and the special
    component when present). Used to evaluate full-basis key material at a
    reduced ciphertext level. Domain-agnostic. *)

val crt_reconstruct_centered : t -> float array
(** Exact CRT (Garner) reconstruction of each coefficient to its centered
    integer value, returned as nearest doubles. Requires [Coeff] domain and
    no special component. *)

val equal : t -> t -> bool
(** Structural equality of basis, domain and residues. *)
