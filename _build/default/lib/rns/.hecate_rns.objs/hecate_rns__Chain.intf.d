lib/rns/chain.mli: Hecate_support
