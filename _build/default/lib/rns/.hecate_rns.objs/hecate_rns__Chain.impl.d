lib/rns/chain.ml: Array Hecate_support
