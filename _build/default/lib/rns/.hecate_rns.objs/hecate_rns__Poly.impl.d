lib/rns/poly.ml: Array Chain Hecate_support
