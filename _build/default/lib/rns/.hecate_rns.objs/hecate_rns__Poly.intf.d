lib/rns/poly.mli: Chain
