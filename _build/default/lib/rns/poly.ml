module M = Hecate_support.Modarith
module Ntt = Hecate_support.Ntt
module Bigint = Hecate_support.Bigint

type domain = Coeff | Eval

type t = {
  chain : Chain.t;
  level_count : int;
  with_special : bool;
  domain : domain;
  data : int array array;
}

let component_count p = p.level_count + if p.with_special then 1 else 0

let modulus_at p i =
  if p.with_special && i = p.level_count then Chain.special_prime p.chain else Chain.prime p.chain i

let table_at p i =
  if p.with_special && i = p.level_count then Chain.special_table p.chain else Chain.table p.chain i

let zero chain ~level_count ~with_special domain =
  if level_count < 1 || level_count > Chain.length chain then
    invalid_arg "Poly.zero: bad level count";
  let comps = level_count + if with_special then 1 else 0 in
  let n = Chain.degree chain in
  { chain; level_count; with_special; domain; data = Array.init comps (fun _ -> Array.make n 0) }

let copy p = { p with data = Array.map Array.copy p.data }

let check_compatible name a b =
  if
    a.chain != b.chain || a.level_count <> b.level_count || a.with_special <> b.with_special
    || a.domain <> b.domain
  then invalid_arg ("Poly." ^ name ^ ": incompatible operands")

let of_centered_coeffs chain ~level_count ~with_special coeffs =
  let n = Chain.degree chain in
  if Array.length coeffs <> n then invalid_arg "Poly.of_centered_coeffs: wrong length";
  let p = zero chain ~level_count ~with_special Coeff in
  for i = 0 to component_count p - 1 do
    let q = modulus_at p i in
    let dst = p.data.(i) in
    for t = 0 to n - 1 do
      dst.(t) <- M.reduce ~q coeffs.(t)
    done
  done;
  p

let map2 name f a b =
  check_compatible name a b;
  let out = copy a in
  for i = 0 to component_count a - 1 do
    let q = modulus_at a i in
    let da = a.data.(i) and db = b.data.(i) and dst = out.data.(i) in
    for t = 0 to Array.length da - 1 do
      dst.(t) <- f ~q da.(t) db.(t)
    done
  done;
  out

let add a b = map2 "add" M.add a b
let sub a b = map2 "sub" M.sub a b

let neg a =
  let out = copy a in
  for i = 0 to component_count a - 1 do
    let q = modulus_at a i in
    let dst = out.data.(i) in
    for t = 0 to Array.length dst - 1 do
      dst.(t) <- M.neg ~q dst.(t)
    done
  done;
  out

let mul a b =
  if a.domain <> Eval || b.domain <> Eval then invalid_arg "Poly.mul: operands must be in Eval domain";
  map2 "mul" M.mul a b

let mul_scalar a c =
  if c < 0 then invalid_arg "Poly.mul_scalar: negative scalar";
  let out = copy a in
  for i = 0 to component_count a - 1 do
    let q = modulus_at a i in
    let k = c mod q in
    let dst = out.data.(i) in
    for t = 0 to Array.length dst - 1 do
      dst.(t) <- M.mul ~q dst.(t) k
    done
  done;
  out

let mul_component_scalars a ks =
  if Array.length ks <> component_count a then
    invalid_arg "Poly.mul_component_scalars: wrong scalar count";
  let out = copy a in
  for i = 0 to component_count a - 1 do
    let q = modulus_at a i in
    let k = ks.(i) in
    if k < 0 || k >= q then invalid_arg "Poly.mul_component_scalars: scalar not reduced";
    let dst = out.data.(i) in
    for t = 0 to Array.length dst - 1 do
      dst.(t) <- M.mul ~q dst.(t) k
    done
  done;
  out

let to_eval p =
  match p.domain with
  | Eval -> p
  | Coeff ->
      let out = { (copy p) with domain = Eval } in
      for i = 0 to component_count p - 1 do
        Ntt.forward (table_at p i) out.data.(i)
      done;
      out

let to_coeff p =
  match p.domain with
  | Coeff -> p
  | Eval ->
      let out = { (copy p) with domain = Coeff } in
      for i = 0 to component_count p - 1 do
        Ntt.inverse (table_at p i) out.data.(i)
      done;
      out

let automorphism p ~galois =
  if p.domain <> Coeff then invalid_arg "Poly.automorphism: operand must be in Coeff domain";
  if galois land 1 = 0 then invalid_arg "Poly.automorphism: galois element must be odd";
  let n = Chain.degree p.chain in
  let two_n = 2 * n in
  let out = zero p.chain ~level_count:p.level_count ~with_special:p.with_special Coeff in
  for i = 0 to component_count p - 1 do
    let q = modulus_at p i in
    let src = p.data.(i) and dst = out.data.(i) in
    for j = 0 to n - 1 do
      let k = j * galois mod two_n in
      if k < n then dst.(k) <- M.add ~q dst.(k) src.(j)
      else dst.(k - n) <- M.sub ~q dst.(k - n) src.(j)
    done
  done;
  out

let rescale_last p =
  if p.domain <> Coeff then invalid_arg "Poly.rescale_last: operand must be in Coeff domain";
  if p.with_special then invalid_arg "Poly.rescale_last: special component present";
  if p.level_count < 2 then invalid_arg "Poly.rescale_last: nothing to drop";
  let dropped = p.level_count - 1 in
  let q_last = Chain.prime p.chain dropped in
  let last = p.data.(dropped) in
  let out = zero p.chain ~level_count:dropped ~with_special:false Coeff in
  let n = Chain.degree p.chain in
  for i = 0 to dropped - 1 do
    let q = Chain.prime p.chain i in
    let inv = Chain.rescale_inv p.chain ~dropped i in
    let src = p.data.(i) and dst = out.data.(i) in
    for t = 0 to n - 1 do
      let c = M.to_centered ~q:q_last last.(t) in
      dst.(t) <- M.mul ~q (M.sub ~q src.(t) (M.reduce ~q c)) inv
    done
  done;
  out

let drop_last p =
  if p.with_special then invalid_arg "Poly.drop_last: special component present";
  if p.level_count < 2 then invalid_arg "Poly.drop_last: nothing to drop";
  {
    p with
    level_count = p.level_count - 1;
    data = Array.map Array.copy (Array.sub p.data 0 (p.level_count - 1));
  }

let mod_down_special p =
  if p.domain <> Coeff then invalid_arg "Poly.mod_down_special: operand must be in Coeff domain";
  if not p.with_special then invalid_arg "Poly.mod_down_special: no special component";
  let sp = Chain.special_prime p.chain in
  let last = p.data.(p.level_count) in
  let out = zero p.chain ~level_count:p.level_count ~with_special:false Coeff in
  let n = Chain.degree p.chain in
  for i = 0 to p.level_count - 1 do
    let q = Chain.prime p.chain i in
    let inv = Chain.special_inv p.chain i in
    let src = p.data.(i) and dst = out.data.(i) in
    for t = 0 to n - 1 do
      let c = M.to_centered ~q:sp last.(t) in
      dst.(t) <- M.mul ~q (M.sub ~q src.(t) (M.reduce ~q c)) inv
    done
  done;
  out

let lift_digit p ~digit ~with_special =
  if p.domain <> Coeff then invalid_arg "Poly.lift_digit: operand must be in Coeff domain";
  if digit < 0 || digit >= p.level_count then invalid_arg "Poly.lift_digit: bad digit index";
  let q_digit = Chain.prime p.chain digit in
  let src = p.data.(digit) in
  let out = zero p.chain ~level_count:p.level_count ~with_special Coeff in
  let n = Chain.degree p.chain in
  for i = 0 to component_count out - 1 do
    let q = modulus_at out i in
    let dst = out.data.(i) in
    for t = 0 to n - 1 do
      dst.(t) <- M.reduce ~q (M.to_centered ~q:q_digit src.(t))
    done
  done;
  out

let restrict_levels p ~level_count =
  if level_count < 1 || level_count > p.level_count then
    invalid_arg "Poly.restrict_levels: bad level count";
  if level_count = p.level_count then p
  else
    let chain_part = Array.sub p.data 0 level_count in
    let data =
      if p.with_special then Array.append chain_part [| p.data.(p.level_count) |] else chain_part
    in
    { p with level_count; data = Array.map Array.copy data }

let crt_reconstruct_centered p =
  if p.domain <> Coeff then invalid_arg "Poly.crt_reconstruct_centered: Coeff domain required";
  if p.with_special then invalid_arg "Poly.crt_reconstruct_centered: special component present";
  let k = p.level_count in
  let n = Chain.degree p.chain in
  let q_prod = Chain.modulus_product p.chain ~upto:k in
  let out = Array.make n 0. in
  let digits = Array.make k 0 in
  for t = 0 to n - 1 do
    (* Garner mixed-radix digits *)
    for i = 0 to k - 1 do
      let q = Chain.prime p.chain i in
      let u = ref (p.data.(i).(t)) in
      for j = 0 to i - 1 do
        u := M.mul ~q (M.sub ~q !u (M.reduce ~q digits.(j))) (Chain.garner_inv p.chain i j)
      done;
      digits.(i) <- !u
    done;
    (* Horner accumulation from most significant digit *)
    let big = ref (Bigint.of_int digits.(k - 1)) in
    for i = k - 2 downto 0 do
      big := Bigint.add_int (Bigint.mul_int !big (Chain.prime p.chain i)) digits.(i)
    done;
    (* centered: value > Q/2 iff 2*value > Q *)
    let doubled = Bigint.mul_int !big 2 in
    if Bigint.compare doubled q_prod > 0 then out.(t) <- -.Bigint.to_float (Bigint.sub q_prod !big)
    else out.(t) <- Bigint.to_float !big
  done;
  out

let equal a b =
  a.chain == b.chain && a.level_count = b.level_count && a.with_special = b.with_special
  && a.domain = b.domain
  && Array.for_all2 (fun x y -> x = y) a.data b.data
