(* Little-endian limbs in base 2^26. 26-bit limbs keep every intermediate
   product (limb * 31-bit scalar + carry) within the native 63-bit int. *)

let limb_bits = 26
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

type t = int array (* little-endian, no trailing zero limbs; [||] is zero *)

let zero = [||]
let one = [| 1 |]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bigint.of_int: negative";
  let rec limbs acc n = if n = 0 then List.rev acc else limbs ((n land limb_mask) :: acc) (n lsr limb_bits) in
  Array.of_list (limbs [] n)

let add_int x n =
  if n < 0 then invalid_arg "Bigint.add_int: negative";
  let len = Array.length x in
  let out = Array.make (len + 3) 0 in
  Array.blit x 0 out 0 len;
  let carry = ref n in
  let i = ref 0 in
  while !carry <> 0 do
    let v = out.(!i) + (!carry land limb_mask) in
    out.(!i) <- v land limb_mask;
    carry := (!carry lsr limb_bits) + (v lsr limb_bits);
    incr i
  done;
  normalize out

let mul_int x n =
  if n < 0 then invalid_arg "Bigint.mul_int: negative";
  if n = 0 then zero
  else begin
    let len = Array.length x in
    let out = Array.make (len + 3) 0 in
    let carry = ref 0 in
    for i = 0 to len - 1 do
      let v = (x.(i) * n) + !carry in
      out.(i) <- v land limb_mask;
      carry := v lsr limb_bits
    done;
    let i = ref len in
    while !carry <> 0 do
      out.(!i) <- !carry land limb_mask;
      carry := !carry lsr limb_bits;
      incr i
    done;
    normalize out
  end

let add x y =
  let lx = Array.length x and ly = Array.length y in
  let len = max lx ly in
  let out = Array.make (len + 1) 0 in
  let carry = ref 0 in
  for i = 0 to len - 1 do
    let v = (if i < lx then x.(i) else 0) + (if i < ly then y.(i) else 0) + !carry in
    out.(i) <- v land limb_mask;
    carry := v lsr limb_bits
  done;
  out.(len) <- !carry;
  normalize out

let compare x y =
  let lx = Array.length x and ly = Array.length y in
  if lx <> ly then Stdlib.compare lx ly
  else begin
    let rec cmp i = if i < 0 then 0 else if x.(i) <> y.(i) then Stdlib.compare x.(i) y.(i) else cmp (i - 1) in
    cmp (lx - 1)
  end

let sub x y =
  if compare x y < 0 then invalid_arg "Bigint.sub: would be negative";
  let lx = Array.length x and ly = Array.length y in
  let out = Array.make lx 0 in
  let borrow = ref 0 in
  for i = 0 to lx - 1 do
    let v = x.(i) - (if i < ly then y.(i) else 0) - !borrow in
    if v < 0 then begin
      out.(i) <- v + limb_base;
      borrow := 1
    end
    else begin
      out.(i) <- v;
      borrow := 0
    end
  done;
  normalize out

let to_float x =
  let acc = ref 0. in
  (* Horner from the most significant limb; doubles track the top 53 bits. *)
  for i = Array.length x - 1 downto 0 do
    acc := (!acc *. float_of_int limb_base) +. float_of_int x.(i)
  done;
  !acc

let to_string x =
  if Array.length x = 0 then "0"
  else begin
    (* Repeated division by 10^9 using int arithmetic on limbs. *)
    let chunks = ref [] in
    let cur = ref (Array.copy x) in
    let divisor = 1_000_000_000 in
    while Array.length !cur > 0 do
      let a = !cur in
      let q = Array.make (Array.length a) 0 in
      let rem = ref 0 in
      for i = Array.length a - 1 downto 0 do
        let v = (!rem lsl limb_bits) lor a.(i) in
        q.(i) <- v / divisor;
        rem := v mod divisor
      done;
      chunks := !rem :: !chunks;
      cur := normalize q
    done;
    match !chunks with
    | [] -> "0"
    | first :: rest ->
        String.concat "" (string_of_int first :: List.map (Printf.sprintf "%09d") rest)
  end
