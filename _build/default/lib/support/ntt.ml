type table = {
  p : int;
  n : int;
  psi_rev : int array; (* psi^bitrev(i), i = 0..n-1 *)
  psi_inv_rev : int array; (* psi^{-bitrev(i)} *)
  n_inv : int;
}

let prime t = t.p
let degree t = t.n

let bitrev i bits =
  let r = ref 0 and x = ref i in
  for _ = 1 to bits do
    r := (!r lsl 1) lor (!x land 1);
    x := !x lsr 1
  done;
  !r

let make_table ~p ~n =
  if n land (n - 1) <> 0 || n <= 0 then invalid_arg "Ntt.make_table: n must be a power of two";
  let bits =
    let rec log2 acc v = if v = 1 then acc else log2 (acc + 1) (v lsr 1) in
    log2 0 n
  in
  let psi = Primes.primitive_root_2n ~p ~n in
  let psi_inv = Modarith.inv ~q:p psi in
  let pow_table root =
    let a = Array.make n 1 in
    for i = 1 to n - 1 do
      a.(i) <- Modarith.mul ~q:p a.(i - 1) root
    done;
    let rev = Array.make n 0 in
    for i = 0 to n - 1 do
      rev.(i) <- a.(bitrev i bits)
    done;
    rev
  in
  { p; n; psi_rev = pow_table psi; psi_inv_rev = pow_table psi_inv; n_inv = Modarith.inv ~q:p n }

(* Longa–Naehrig iterative negacyclic NTT (CT butterflies, decimation in
   time), with the psi powers folded into the twiddles so no pre/post scaling
   by psi^i is needed. *)
let forward t a =
  let p = t.p and n = t.n in
  if Array.length a <> n then invalid_arg "Ntt.forward: wrong length";
  let tlen = ref n and m = ref 1 in
  while !m < n do
    tlen := !tlen / 2;
    for i = 0 to !m - 1 do
      let j1 = 2 * i * !tlen in
      let j2 = j1 + !tlen - 1 in
      let s = t.psi_rev.(!m + i) in
      for j = j1 to j2 do
        let u = a.(j) in
        let v = Modarith.mul ~q:p a.(j + !tlen) s in
        a.(j) <- Modarith.add ~q:p u v;
        a.(j + !tlen) <- Modarith.sub ~q:p u v
      done
    done;
    m := !m * 2
  done

let inverse t a =
  let p = t.p and n = t.n in
  if Array.length a <> n then invalid_arg "Ntt.inverse: wrong length";
  let tlen = ref 1 and m = ref n in
  while !m > 1 do
    let j1 = ref 0 in
    let h = !m / 2 in
    for i = 0 to h - 1 do
      let j2 = !j1 + !tlen - 1 in
      let s = t.psi_inv_rev.(h + i) in
      for j = !j1 to j2 do
        let u = a.(j) in
        let v = a.(j + !tlen) in
        a.(j) <- Modarith.add ~q:p u v;
        a.(j + !tlen) <- Modarith.mul ~q:p (Modarith.sub ~q:p u v) s
      done;
      j1 := !j1 + (2 * !tlen)
    done;
    tlen := !tlen * 2;
    m := h
  done;
  for i = 0 to n - 1 do
    a.(i) <- Modarith.mul ~q:p a.(i) t.n_inv
  done

let pointwise_mul t dst a b =
  let p = t.p in
  for i = 0 to t.n - 1 do
    dst.(i) <- Modarith.mul ~q:p a.(i) b.(i)
  done

let negacyclic_mul t a b =
  let fa = Array.copy a and fb = Array.copy b in
  forward t fa;
  forward t fb;
  let dst = Array.make t.n 0 in
  pointwise_mul t dst fa fb;
  inverse t dst;
  dst
