(** Iterative radix-2 complex FFT.

    Used by the CKKS canonical-embedding encoder. Lengths must be powers of
    two. Arrays are transformed in place; real and imaginary parts live in
    separate float arrays to avoid boxing. *)

type buffer = { re : float array; im : float array }
(** A complex vector of length [Array.length re = Array.length im]. *)

val make_buffer : int -> buffer
(** [make_buffer n] allocates a zeroed complex vector of length [n]. *)

val forward : buffer -> unit
(** In-place forward DFT with kernel [exp (-2πi·jk/n)] (no normalisation). *)

val inverse : buffer -> unit
(** In-place inverse DFT with kernel [exp (+2πi·jk/n)] and [1/n]
    normalisation. [inverse (forward v) = v] up to rounding. *)

val bit_reverse_permute : buffer -> unit
(** Expose the shared bit-reversal permutation (used by tests). *)
