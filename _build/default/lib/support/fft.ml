type buffer = { re : float array; im : float array }

let make_buffer n = { re = Array.make n 0.; im = Array.make n 0. }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let bit_reverse_permute { re; im } =
  let n = Array.length re in
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done

(* [sign] is -1. for the forward transform, +1. for the inverse. *)
let transform sign ({ re; im } as buf) =
  let n = Array.length re in
  if not (is_pow2 n) then invalid_arg "Fft: length must be a power of two";
  if Array.length im <> n then invalid_arg "Fft: re/im length mismatch";
  bit_reverse_permute buf;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = sign *. 2. *. Float.pi /. float_of_int !len in
    let wr = cos theta and wi = sin theta in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1. and ci = ref 0. in
      for k = 0 to half - 1 do
        let a = !i + k and b = !i + k + half in
        let tr = (re.(b) *. !cr) -. (im.(b) *. !ci) in
        let ti = (re.(b) *. !ci) +. (im.(b) *. !cr) in
        re.(b) <- re.(a) -. tr;
        im.(b) <- im.(a) -. ti;
        re.(a) <- re.(a) +. tr;
        im.(a) <- im.(a) +. ti;
        let ncr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := ncr
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let forward buf = transform (-1.) buf

let inverse buf =
  transform 1. buf;
  let n = Array.length buf.re in
  let inv_n = 1. /. float_of_int n in
  for i = 0 to n - 1 do
    buf.re.(i) <- buf.re.(i) *. inv_n;
    buf.im.(i) <- buf.im.(i) *. inv_n
  done
