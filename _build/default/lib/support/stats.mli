(** Small statistics helpers used by the accuracy and estimator harnesses. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on empty input. *)

val variance : float array -> float
(** Population variance. *)

val rmse : float array -> float array -> float
(** Root-mean-square error between two equal-length vectors. *)

val max_abs_diff : float array -> float array -> float
(** Largest absolute element-wise difference. *)

val geomean : float array -> float
(** Geometric mean of positive values. *)

val relative_error : actual:float -> estimate:float -> float
(** [|estimate - actual| / actual]. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank on a sorted copy. *)
