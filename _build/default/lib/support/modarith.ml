let max_modulus_bits = 31

let add ~q a b =
  let s = a + b in
  if s >= q then s - q else s

let sub ~q a b =
  let d = a - b in
  if d < 0 then d + q else d

let neg ~q a = if a = 0 then 0 else q - a

let mul ~q a b = a * b mod q

let pow ~q b e =
  assert (e >= 0);
  let rec loop acc b e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul ~q acc b else acc in
      loop acc (mul ~q b b) (e lsr 1)
  in
  loop 1 (b mod q) e

let inv ~q a =
  let a = a mod q in
  if a = 0 then invalid_arg "Modarith.inv: zero has no inverse";
  (* Fermat: q is prime. *)
  pow ~q a (q - 2)

let reduce ~q a =
  let r = a mod q in
  if r < 0 then r + q else r

let to_centered ~q a = if a > q / 2 then a - q else a

let of_centered ~q a = reduce ~q a
