(** Minimal arbitrary-precision unsigned integers.

    Only the operations needed for CRT reconstruction of RNS residues at
    decode time (Garner's algorithm followed by centering). Not a general
    bignum library; zarith is unavailable in this environment. *)

type t
(** An unsigned arbitrary-precision integer. *)

val zero : t
val one : t
val of_int : int -> t
(** [of_int n] for [n >= 0]. *)

val add_int : t -> int -> t
(** [add_int x n] with [0 <= n < 2^31]. *)

val mul_int : t -> int -> t
(** [mul_int x n] with [0 <= n < 2^31]. *)

val add : t -> t -> t
val sub : t -> t -> t
(** [sub x y] requires [x >= y]. @raise Invalid_argument otherwise. *)

val compare : t -> t -> int
val to_float : t -> float
(** Nearest-double approximation (exact for values below 2^53). *)

val to_string : t -> string
(** Decimal representation (for diagnostics and tests). *)
