(** Prime generation for NTT-friendly modulus chains.

    RNS-CKKS needs primes [p ≡ 1 (mod 2N)] so that the negacyclic NTT of
    degree [N] exists modulo [p]. All primes are at most
    {!Modarith.max_modulus_bits} bits. *)

val is_prime : int -> bool
(** Deterministic Miller–Rabin, valid for the full native [int] range used
    here (moduli below 2^31 and small auxiliary values). *)

val ntt_primes : bits:int -> n:int -> count:int -> int list
(** [ntt_primes ~bits ~n ~count] returns [count] distinct primes
    [p ≡ 1 (mod 2n)] of width exactly [bits] bits, closest to [2^bits] from
    below, in decreasing order.
    @raise Invalid_argument if [bits > Modarith.max_modulus_bits] or not
    enough primes exist. *)

val ntt_primes_avoiding : bits:int -> n:int -> count:int -> avoid:int list -> int list
(** Like {!ntt_primes} but skipping any prime in [avoid] (used to pick the
    special key-switching prime disjoint from the ciphertext chain). *)

val primitive_root_2n : p:int -> n:int -> int
(** [primitive_root_2n ~p ~n] is a primitive [2n]-th root of unity modulo the
    prime [p] (requires [p ≡ 1 (mod 2n)]). *)
