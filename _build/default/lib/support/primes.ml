(* Deterministic Miller–Rabin. The witness set {2,3,5,7,11,13,17,19,23,29,31,37}
   is complete for all integers below 3.3 * 10^24, far beyond our 31-bit
   moduli. Modular products stay within 62 bits for the values we test. *)
let witnesses = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ]

let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else begin
    let d = ref (n - 1) and r = ref 0 in
    while !d mod 2 = 0 do
      d := !d / 2;
      incr r
    done;
    let strong_probable_prime a =
      let a = a mod n in
      if a = 0 then true
      else begin
        let x = ref (Modarith.pow ~q:n a !d) in
        if !x = 1 || !x = n - 1 then true
        else begin
          let ok = ref false in
          (try
             for _ = 1 to !r - 1 do
               x := Modarith.mul ~q:n !x !x;
               if !x = n - 1 then begin
                 ok := true;
                 raise Exit
               end
             done
           with Exit -> ());
          !ok
        end
      end
    in
    List.for_all strong_probable_prime witnesses
  end

let ntt_primes_avoiding ~bits ~n ~count ~avoid =
  if bits > Modarith.max_modulus_bits then
    invalid_arg "Primes.ntt_primes: modulus too wide for native ints";
  if bits < 4 then invalid_arg "Primes.ntt_primes: modulus too narrow";
  let step = 2 * n in
  let top = 1 lsl bits in
  let lo = 1 lsl (bits - 1) in
  (* Largest candidate ≡ 1 (mod 2n) strictly below 2^bits. *)
  let start = ((top - 2) / step * step) + 1 in
  let rec collect acc remaining candidate =
    if remaining = 0 then List.rev acc
    else if candidate <= lo then
      invalid_arg
        (Printf.sprintf "Primes.ntt_primes: only %d of %d primes of %d bits for n=%d"
           (count - remaining) count bits n)
    else if is_prime candidate && not (List.mem candidate avoid) then
      collect (candidate :: acc) (remaining - 1) (candidate - step)
    else collect acc remaining (candidate - step)
  in
  collect [] count start

let ntt_primes ~bits ~n ~count = ntt_primes_avoiding ~bits ~n ~count ~avoid:[]

let primitive_root_2n ~p ~n =
  let order = 2 * n in
  if (p - 1) mod order <> 0 then
    invalid_arg "Primes.primitive_root_2n: p is not NTT-friendly for n";
  let cofactor = (p - 1) / order in
  (* Try small bases until g = base^cofactor has exact order 2n, i.e.
     g^n = -1 (mod p). *)
  let rec search base =
    if base >= p then invalid_arg "Primes.primitive_root_2n: no root found"
    else
      let g = Modarith.pow ~q:p base cofactor in
      if g > 1 && Modarith.pow ~q:p g n = p - 1 then g else search (base + 1)
  in
  search 2
