lib/support/modarith.ml:
