lib/support/bigint.mli:
