lib/support/stats.mli:
