lib/support/primes.ml: List Modarith Printf
