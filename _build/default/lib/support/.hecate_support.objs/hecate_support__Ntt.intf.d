lib/support/ntt.mli:
