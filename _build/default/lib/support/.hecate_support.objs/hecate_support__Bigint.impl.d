lib/support/bigint.ml: Array List Printf Stdlib String
