lib/support/ntt.ml: Array Modarith Primes
