lib/support/fft.mli:
