lib/support/primes.mli:
