lib/support/fft.ml: Array Float
