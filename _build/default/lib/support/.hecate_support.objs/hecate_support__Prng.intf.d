lib/support/prng.mli:
