lib/support/modarith.mli:
