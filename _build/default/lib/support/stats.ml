let check_nonempty name a = if Array.length a = 0 then invalid_arg ("Stats." ^ name ^ ": empty input")

let mean a =
  check_nonempty "mean" a;
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let variance a =
  let m = mean a in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a /. float_of_int (Array.length a)

let rmse a b =
  if Array.length a <> Array.length b then invalid_arg "Stats.rmse: length mismatch";
  check_nonempty "rmse" a;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int (Array.length a))

let max_abs_diff a b =
  if Array.length a <> Array.length b then invalid_arg "Stats.max_abs_diff: length mismatch";
  let m = ref 0. in
  for i = 0 to Array.length a - 1 do
    m := Float.max !m (Float.abs (a.(i) -. b.(i)))
  done;
  !m

let geomean a =
  check_nonempty "geomean" a;
  let acc = Array.fold_left (fun acc x ->
      if x <= 0. then invalid_arg "Stats.geomean: non-positive value";
      acc +. log x) 0. a
  in
  exp (acc /. float_of_int (Array.length a))

let relative_error ~actual ~estimate = Float.abs (estimate -. actual) /. actual

let percentile xs p =
  check_nonempty "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))
