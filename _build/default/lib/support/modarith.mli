(** Modular arithmetic over word-sized odd prime moduli.

    All moduli handled by this module are at most 31 bits wide so that the
    product of two residues fits in OCaml's 63-bit native [int] without
    overflow. Residues are kept in canonical form, i.e. in [\[0, q)]. *)

val max_modulus_bits : int
(** Largest supported modulus width in bits (31). *)

val add : q:int -> int -> int -> int
(** [add ~q a b] is [(a + b) mod q] for canonical [a], [b]. *)

val sub : q:int -> int -> int -> int
(** [sub ~q a b] is [(a - b) mod q], canonical. *)

val neg : q:int -> int -> int
(** [neg ~q a] is [(-a) mod q], canonical. *)

val mul : q:int -> int -> int -> int
(** [mul ~q a b] is [(a * b) mod q]. Requires [q < 2^31]. *)

val pow : q:int -> int -> int -> int
(** [pow ~q b e] is [b^e mod q] by square-and-multiply. [e >= 0]. *)

val inv : q:int -> int -> int
(** [inv ~q a] is the multiplicative inverse of [a] modulo the prime [q].
    @raise Invalid_argument if [a = 0 mod q]. *)

val reduce : q:int -> int -> int
(** [reduce ~q a] maps any native integer (possibly negative) to canonical
    form in [\[0, q)]. *)

val to_centered : q:int -> int -> int
(** [to_centered ~q a] maps a canonical residue to the centered representative
    in [(-q/2, q/2\]]. *)

val of_centered : q:int -> int -> int
(** Inverse of {!to_centered}; same as [reduce]. *)
